// Package cli holds the flag and setup boilerplate shared by cmd/disttrain
// and the runnable examples: experiment-flag registration, config assembly,
// cluster selection, fault-schedule loading, signal-aware contexts, and
// run-or-die helpers. Keeping it in one place means every entry point
// exposes the same knobs with the same semantics.
package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/fault"
	"disttrain/internal/grad"
	"disttrain/internal/live"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// Flags is the bundle of experiment flags shared by the CLI tools. Register
// binds them onto a FlagSet; Config assembles a validated-ready core.Config
// after parsing.
type Flags struct {
	Algo      string
	Workers   int
	Model     string
	Gbps      float64
	Iters     int
	Seed      uint64
	Shard     string
	WFBP      bool
	DGC       bool
	LocalAgg  bool
	Staleness int
	Tau       int
	GossipP   float64
	LR        float64

	Real    bool
	Dataset string
	Net     string
	Batch   int
	Pool    int

	FaultSpec string
	FaultFile string
	Elastic   bool
	Timeout   float64

	Transport  string
	Role       string
	Coord      string
	MeshListen string
	CkptDir    string
	CkptEvery  int
	SlowUnitMS float64
	Rejoin     int
}

// Register binds the shared experiment flags onto fs and returns the
// destination struct. Call fs.Parse (or flag.Parse for the default set)
// before reading it.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Algo, "algo", "bsp", "algorithm: bsp|asp|ssp|easgd|arsgd|gosgd|adpsgd|dpsgd|hogwild|adacomm")
	fs.IntVar(&f.Workers, "workers", 8, "number of workers (GPUs)")
	fs.StringVar(&f.Model, "model", "resnet50", "cost model: resnet50|vgg16")
	fs.Float64Var(&f.Gbps, "gbps", 56, "inter-machine bandwidth (10 or 56)")
	fs.IntVar(&f.Iters, "iters", 30, "training iterations per worker")
	fs.Uint64Var(&f.Seed, "seed", 1, "random seed")
	fs.StringVar(&f.Shard, "shard", "none", "PS sharding: none|layerwise|balanced")
	fs.BoolVar(&f.WFBP, "wfbp", false, "enable wait-free backpropagation")
	fs.BoolVar(&f.DGC, "dgc", false, "enable deep gradient compression")
	fs.BoolVar(&f.LocalAgg, "localagg", false, "enable BSP local aggregation")
	fs.IntVar(&f.Staleness, "staleness", 3, "SSP staleness threshold s")
	fs.IntVar(&f.Tau, "tau", 8, "EASGD communication period")
	fs.Float64Var(&f.GossipP, "p", 0.01, "GoSGD gossip probability")
	fs.Float64Var(&f.LR, "lr", 0.1, "learning-rate base")

	fs.BoolVar(&f.Real, "real", false, "real gradient math (accuracy mode)")
	fs.StringVar(&f.Dataset, "dataset", "shapes16", "real mode dataset: shapes16|gauss|spiral")
	fs.StringVar(&f.Net, "net", "minicnn", "real mode model: mlp|minicnn|miniresnet|minivgg")
	fs.IntVar(&f.Batch, "batch", 8, "real mode per-worker batch size")
	fs.IntVar(&f.Pool, "pool", 0, "compute pool goroutines for real gradient math (0 = one per CPU, <0 = serial inline); results are identical for every value")

	fs.StringVar(&f.FaultSpec, "faults", "", "fault schedule spec, e.g. 'crash@iter20:w3:restart=5;drop@10:p=0.05:for=60'")
	fs.StringVar(&f.FaultFile, "faultsjson", "", "JSON file with a fault schedule ({\"events\": [...]})")
	fs.BoolVar(&f.Elastic, "elastic", false, "elastic membership: barriers exclude crashed workers instead of stalling")
	fs.Float64Var(&f.Timeout, "timeout", 0, "barrier timeout in virtual seconds (0 = 5 mean iterations)")

	fs.StringVar(&f.Transport, "transport", "sim", "execution backend: sim (virtual-time simulator) | tcp (live TCP) | chan (live in-process channels); live backends require -real")
	fs.StringVar(&f.Role, "role", "", "live multi-process role: coordinator|worker (empty = single-process loopback harness)")
	fs.StringVar(&f.Coord, "coord", "127.0.0.1:9901", "coordinator address: listen address for -role=coordinator, dial address for -role=worker")
	fs.StringVar(&f.MeshListen, "meshlisten", "127.0.0.1:0", "live worker's mesh listen address (use a peer-reachable host:0 for multi-machine runs)")
	fs.StringVar(&f.CkptDir, "ckptdir", "", "live checkpoint directory (empty = no checkpoints; required to survive crash faults)")
	fs.IntVar(&f.CkptEvery, "ckptevery", 1, "live checkpoint cadence in iterations")
	fs.Float64Var(&f.SlowUnitMS, "slowunit", 0, "live latency per slowdown unit in ms (0 = default 10ms)")
	fs.IntVar(&f.Rejoin, "rejoin", -1, "restarted live worker: rejoin an in-flight run as this rank (requires -ckptdir and a crash schedule)")
	return f
}

// Config assembles a core.Config from the parsed flags. The config is not
// yet validated — core.Run validates it — but schedule files are read and
// parsed here so syntax errors surface before any simulation starts.
func (f *Flags) Config() (core.Config, error) {
	profile, err := costmodel.ProfileByName(f.Model)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Algo:       core.Algo(f.Algo),
		Cluster:    Cluster(f.Gbps, f.Workers),
		Workers:    f.Workers,
		Workload:   costmodel.NewWorkload(profile, costmodel.TitanV(), 128),
		Iters:      f.Iters,
		Seed:       f.Seed,
		Momentum:   0.9,
		LR:         opt.Schedule{Base: f.LR},
		Staleness:  f.Staleness,
		Tau:        f.Tau,
		GossipP:    f.GossipP,
		Sharding:   core.Sharding(f.Shard),
		WaitFreeBP: f.WFBP,
		LocalAgg:   f.LocalAgg,

		Elastic:           f.Elastic,
		BarrierTimeoutSec: f.Timeout,

		PoolSize: PoolSize(f.Pool),
	}
	cfg.Faults, err = LoadFaults(f.FaultSpec, f.FaultFile)
	if err != nil {
		return core.Config{}, err
	}
	if f.DGC {
		d := grad.DefaultDGC(0.9, f.Iters/5)
		cfg.DGC = &d
	}
	if f.Real {
		r := rng.New(f.Seed * 31)
		ds, err := data.ByName(f.Dataset, r, 4000)
		if err != nil {
			return core.Config{}, err
		}
		trainDS, testDS := ds.Split(r.Split(1), 600)
		factory, err := nn.FactoryByName(f.Net, ds.Classes)
		if err != nil {
			return core.Config{}, err
		}
		cfg.WeightDecay = 1e-4
		cfg.LR = opt.Schedule{Base: f.LR, WarmupIters: f.Iters / 20}
		cfg.Real = &core.RealConfig{
			Factory:   factory,
			Train:     trainDS,
			Test:      testDS,
			Batch:     f.Batch,
			EvalEvery: max(1, f.Iters/10),
			EvalMax:   500,
		}
	}
	return cfg, nil
}

// LoadFaults builds a fault schedule from a compact spec string and/or a
// JSON schedule file; events from both are combined. Returns nil when both
// are empty.
func LoadFaults(spec, file string) (*fault.Schedule, error) {
	var s *fault.Schedule
	if spec != "" {
		var err error
		if s, err = fault.ParseSpec(spec); err != nil {
			return nil, err
		}
	}
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("fault schedule file: %w", err)
		}
		var fs fault.Schedule
		if err := json.Unmarshal(raw, &fs); err != nil {
			return nil, fmt.Errorf("fault schedule file %s: %w", file, err)
		}
		if s == nil {
			s = &fs
		} else {
			s.Events = append(s.Events, fs.Events...)
		}
	}
	return s, nil
}

// PoolSize resolves the -pool flag into core.Config.PoolSize: 0 asks for one
// compute goroutine per available CPU, a negative value forces the serial
// inline path, and positive values pass through. Training results are
// bit-identical for every resolution; only wall time changes.
func PoolSize(flag int) int {
	switch {
	case flag < 0:
		return 0
	case flag == 0:
		return runtime.GOMAXPROCS(0)
	}
	return flag
}

// Cluster returns the paper's 56 Gbps InfiniBand cluster shape for gbps >=
// 56 and the 10 Gbps Ethernet shape otherwise.
func Cluster(gbps float64, workers int) cluster.Config {
	if gbps >= 56 {
		return cluster.Paper56G(workers)
	}
	return cluster.Paper10G(workers)
}

// Context returns a context canceled on SIGINT/SIGTERM, so an interrupted
// run unwinds through core.Run's cancellation path instead of dying
// mid-print.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// LiveOptions translates the checkpoint and slow-unit flags into live run
// options.
func (f *Flags) LiveOptions() []live.Option {
	var opts []live.Option
	if f.CkptDir != "" {
		opts = append(opts, live.WithCheckpoints(f.CkptDir, f.CkptEvery))
	}
	if f.SlowUnitMS > 0 {
		opts = append(opts, live.WithSlowUnit(time.Duration(f.SlowUnitMS*float64(time.Millisecond))))
	}
	return opts
}

// RunLive dispatches a live (wall-clock) run according to the transport
// and role flags. A nil Result with nil error means this process was a
// worker: it trained to completion, and the coordinator process owns the
// run's Result.
func (f *Flags) RunLive(cfg core.Config) (*live.Result, error) {
	opts := f.LiveOptions()
	switch f.Transport {
	case "chan":
		if f.Role != "" {
			return nil, fmt.Errorf("cli: -role applies only to -transport=tcp")
		}
		return live.RunChan(cfg, opts...)
	case "tcp":
		switch f.Role {
		case "":
			return live.RunLoopback(cfg, opts...)
		case "coordinator":
			return live.RunCoordinator(cfg, f.Coord, opts...)
		case "worker":
			if f.Rejoin >= 0 {
				return nil, live.RunWorkerRejoin(cfg, f.Coord, f.Rejoin, opts...)
			}
			return nil, live.RunWorker(cfg, f.Coord, f.MeshListen, opts...)
		default:
			return nil, fmt.Errorf("cli: unknown -role %q (want coordinator or worker)", f.Role)
		}
	default:
		return nil, fmt.Errorf("cli: unknown -transport %q (want sim, tcp or chan)", f.Transport)
	}
}

// MustRun runs one experiment and exits the process on error.
func MustRun(ctx context.Context, cfg core.Config) *core.Result {
	res, err := core.Run(ctx, cfg)
	if err != nil {
		Fatal(err)
	}
	return res
}

// ShapesData deterministically generates the shapes16 dataset and splits
// off a test set — the setup stanza every accuracy example starts with.
func ShapesData(seed uint64, n, testN int) (train, test *data.Dataset) {
	r := rng.New(seed)
	return data.GenShapes16(r, n).Split(r.Split(1), testN)
}

// SpeedupBase is the single-GPU throughput baseline (samples/s) speedup
// figures divide by.
func SpeedupBase(w costmodel.Workload) float64 {
	return float64(w.Batch) / w.MeanIterSec()
}

// Fatal prints the error prefixed with the program name and exits.
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	os.Exit(1)
}
