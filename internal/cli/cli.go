// Package cli holds the flag and setup boilerplate shared by cmd/disttrain
// and the runnable examples: experiment-flag registration, spec/config
// assembly, fault-schedule loading, signal-aware contexts, and run-or-die
// helpers. Keeping it in one place means every entry point exposes the same
// knobs with the same semantics.
//
// Flags no longer assemble a core.Config directly: Spec builds the
// canonical api.ExperimentSpec first (the same document the HTTP control
// plane accepts), and Config derives the runtime configuration from it —
// so a flag-driven local run and a spec submitted to cmd/expd go through
// one derivation path.
package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"disttrain/internal/api"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/fault"
	"disttrain/internal/live"
	"disttrain/internal/rng"
)

// Flags is the bundle of experiment flags shared by the CLI tools. Register
// binds them onto a FlagSet; Spec assembles the canonical ExperimentSpec
// after parsing, and Config derives a validated-ready core.Config from it.
type Flags struct {
	Algo      string
	Workers   int
	Model     string
	Gbps      float64
	Iters     int
	Seed      uint64
	Shard     string
	WFBP      bool
	DGC       bool
	Quant8    bool
	QuantF16  bool
	LocalAgg  bool
	Staleness int
	Tau       int
	GossipP   float64
	LR        float64

	Collective string
	Overlay    string
	OverlayDeg int

	Real     bool
	Dataset  string
	Net      string
	Batch    int
	Pool     int
	AugShift int
	AugFlip  float64

	FaultSpec string
	FaultFile string
	Elastic   bool
	Timeout   float64

	Transport  string
	Role       string
	Coord      string
	MeshListen string
	CkptDir    string
	CkptEvery  int
	SlowUnitMS float64
	Rejoin     int
}

// Register binds the shared experiment flags onto fs and returns the
// destination struct. Call fs.Parse (or flag.Parse for the default set)
// before reading it.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Algo, "algo", "bsp", "algorithm: bsp|asp|ssp|easgd|arsgd|gosgd|adpsgd|dpsgd|hogwild|adacomm")
	fs.IntVar(&f.Workers, "workers", 8, "number of workers (GPUs)")
	fs.StringVar(&f.Model, "model", "resnet50", "cost model: resnet50|vgg16")
	fs.Float64Var(&f.Gbps, "gbps", 56, "inter-machine bandwidth (10 or 56)")
	fs.IntVar(&f.Iters, "iters", 30, "training iterations per worker")
	fs.Uint64Var(&f.Seed, "seed", 1, "random seed")
	fs.StringVar(&f.Shard, "shard", "none", "PS sharding: none|layerwise|balanced")
	fs.BoolVar(&f.WFBP, "wfbp", false, "enable wait-free backpropagation")
	fs.BoolVar(&f.DGC, "dgc", false, "enable deep gradient compression")
	fs.BoolVar(&f.Quant8, "quant8", false, "8-bit gradient quantization (layers on -dgc)")
	fs.BoolVar(&f.QuantF16, "quantf16", false, "fp16 gradient quantization (layers on -dgc)")
	fs.BoolVar(&f.LocalAgg, "localagg", false, "enable BSP local aggregation")
	fs.IntVar(&f.Staleness, "staleness", 3, "SSP staleness threshold s")
	fs.IntVar(&f.Tau, "tau", 8, "EASGD communication period")
	fs.Float64Var(&f.GossipP, "p", 0.01, "GoSGD gossip probability")
	fs.Float64Var(&f.LR, "lr", 0.1, "learning-rate base")
	fs.StringVar(&f.Collective, "collective", "", "AR-SGD AllReduce: ring|tree|hierarchical|butterfly|torus (empty = ring; sim-only beyond ring/tree)")
	fs.StringVar(&f.Overlay, "overlay", "", "AD-PSGD/GoSGD gossip overlay: kregular|smallworld (empty = uniform partner selection; sim-only)")
	fs.IntVar(&f.OverlayDeg, "overlaydeg", 0, "overlay neighbor degree per rank (0 = default 4)")

	fs.BoolVar(&f.Real, "real", false, "real gradient math (accuracy mode)")
	fs.StringVar(&f.Dataset, "dataset", "shapes16", "real mode dataset: shapes16|gauss|spiral")
	fs.StringVar(&f.Net, "net", "minicnn", "real mode model: mlp|minicnn|miniresnet|minivgg")
	fs.IntVar(&f.Batch, "batch", 8, "real mode per-worker batch size")
	fs.IntVar(&f.Pool, "pool", 0, "compute pool goroutines for real gradient math (0 = one per CPU, <0 = serial inline); results are identical for every value")
	fs.IntVar(&f.AugShift, "augshift", 0, "real mode augmentation: max per-axis pixel shift (0 = off)")
	fs.Float64Var(&f.AugFlip, "augflip", 0, "real mode augmentation: horizontal-flip probability (0 = off)")

	fs.StringVar(&f.FaultSpec, "faults", "", "fault schedule spec, e.g. 'crash@iter20:w3:restart=5;drop@10:p=0.05:for=60'")
	fs.StringVar(&f.FaultFile, "faultsjson", "", "JSON file with a fault schedule ({\"events\": [...]})")
	fs.BoolVar(&f.Elastic, "elastic", false, "elastic membership: barriers exclude crashed workers instead of stalling")
	fs.Float64Var(&f.Timeout, "timeout", 0, "barrier timeout in virtual seconds (0 = 5 mean iterations)")

	fs.StringVar(&f.Transport, "transport", "sim", "execution backend: sim (virtual-time simulator) | tcp (live TCP) | chan (live in-process channels); live backends require -real")
	fs.StringVar(&f.Role, "role", "", "live multi-process role: coordinator|worker (empty = single-process loopback harness)")
	fs.StringVar(&f.Coord, "coord", "127.0.0.1:9901", "coordinator address: listen address for -role=coordinator, dial address for -role=worker")
	fs.StringVar(&f.MeshListen, "meshlisten", "127.0.0.1:0", "live worker's mesh listen address (use a peer-reachable host:0 for multi-machine runs)")
	fs.StringVar(&f.CkptDir, "ckptdir", "", "live checkpoint directory (empty = no checkpoints; required to survive crash faults)")
	fs.IntVar(&f.CkptEvery, "ckptevery", 1, "live checkpoint cadence in iterations")
	fs.Float64Var(&f.SlowUnitMS, "slowunit", 0, "live latency per slowdown unit in ms (0 = default 10ms)")
	fs.IntVar(&f.Rejoin, "rejoin", -1, "restarted live worker: rejoin an in-flight run as this rank (requires -ckptdir and a crash schedule)")
	return f
}

// Spec assembles the canonical api.ExperimentSpec from the parsed flags —
// the same document a -server run submits to cmd/expd. Schedule files are
// read here (the spec carries plain data, not file paths), so syntax errors
// surface before any run or submission starts.
func (f *Flags) Spec() (api.ExperimentSpec, error) {
	staleness := f.Staleness
	spec := api.ExperimentSpec{
		Version:       api.SpecVersion,
		Algo:          f.Algo,
		Workers:       f.Workers,
		Model:         f.Model,
		Gbps:          f.Gbps,
		Iters:         f.Iters,
		Seed:          f.Seed,
		LR:            f.LR,
		Staleness:     &staleness,
		Tau:           f.Tau,
		GossipP:       f.GossipP,
		Collective:    f.Collective,
		Overlay:       f.Overlay,
		OverlayDegree: f.OverlayDeg,
		Sharding:      f.Shard,
		WaitFreeBP:    f.WFBP,
		DGC:           f.DGC,
		Quantize8:     f.Quant8,
		QuantizeF16:   f.QuantF16,
		LocalAgg:      f.LocalAgg,
		FaultSpec:     f.FaultSpec,
		Elastic:       f.Elastic,
		TimeoutSec:    f.Timeout,
		Transport:     f.Transport,
		Pool:          f.Pool,
		CkptDir:       f.CkptDir,
		CkptEvery:     f.CkptEvery,
		SlowUnitMS:    f.SlowUnitMS,
	}
	if f.FaultFile != "" {
		sched, err := LoadFaults("", f.FaultFile)
		if err != nil {
			return api.ExperimentSpec{}, err
		}
		spec.Faults = sched
	}
	if f.Real {
		spec.Real = &api.RealSpec{
			Dataset:     f.Dataset,
			Net:         f.Net,
			Batch:       f.Batch,
			AugShift:    f.AugShift,
			AugFlipProb: f.AugFlip,
		}
	}
	return spec, nil
}

// Config derives a core.Config from the parsed flags by way of the
// canonical spec, so local flag-driven runs and HTTP submissions share one
// derivation path. The config is not yet validated — core.Run validates it.
func (f *Flags) Config() (core.Config, error) {
	spec, err := f.Spec()
	if err != nil {
		return core.Config{}, err
	}
	return spec.Config()
}

// LoadFaults builds a fault schedule from a compact spec string and/or a
// JSON schedule file; events from both are combined. Returns nil when both
// are empty.
func LoadFaults(spec, file string) (*fault.Schedule, error) {
	var s *fault.Schedule
	if spec != "" {
		var err error
		if s, err = fault.ParseSpec(spec); err != nil {
			return nil, err
		}
	}
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("fault schedule file: %w", err)
		}
		var fs fault.Schedule
		if err := json.Unmarshal(raw, &fs); err != nil {
			return nil, fmt.Errorf("fault schedule file %s: %w", file, err)
		}
		if s == nil {
			s = &fs
		} else {
			s.Events = append(s.Events, fs.Events...)
		}
	}
	return s, nil
}

// PoolSize resolves the -pool flag into core.Config.PoolSize. Kept as an
// alias of api.PoolSize for the examples that call it directly.
func PoolSize(flag int) int { return api.PoolSize(flag) }

// Cluster returns the paper's 56 Gbps InfiniBand cluster shape for gbps >=
// 56 and the 10 Gbps Ethernet shape otherwise.
func Cluster(gbps float64, workers int) cluster.Config { return api.Cluster(gbps, workers) }

// Context returns a context canceled on SIGINT/SIGTERM, so an interrupted
// run unwinds through core.Run's cancellation path instead of dying
// mid-print.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// LiveOptions translates the checkpoint and slow-unit flags into live run
// options.
func (f *Flags) LiveOptions() []live.Option {
	spec := api.ExperimentSpec{CkptDir: f.CkptDir, CkptEvery: f.CkptEvery, SlowUnitMS: f.SlowUnitMS}
	return spec.LiveOptions()
}

// RunLive dispatches a live (wall-clock) run according to the transport
// and role flags, with any extra options (tracing, metrics) appended to the
// flag-derived ones. A nil Result with nil error means this process was a
// worker: it trained to completion, and the coordinator process owns the
// run's Result.
func (f *Flags) RunLive(cfg core.Config, extra ...live.Option) (*live.Result, error) {
	opts := append(f.LiveOptions(), extra...)
	switch f.Transport {
	case "chan":
		if f.Role != "" {
			return nil, fmt.Errorf("cli: -role applies only to -transport=tcp")
		}
		return live.RunChan(cfg, opts...)
	case "tcp":
		switch f.Role {
		case "":
			return live.RunLoopback(cfg, opts...)
		case "coordinator":
			return live.RunCoordinator(cfg, f.Coord, opts...)
		case "worker":
			if f.Rejoin >= 0 {
				return nil, live.RunWorkerRejoin(cfg, f.Coord, f.Rejoin, opts...)
			}
			return nil, live.RunWorker(cfg, f.Coord, f.MeshListen, opts...)
		default:
			return nil, fmt.Errorf("cli: unknown -role %q (want coordinator or worker)", f.Role)
		}
	default:
		return nil, fmt.Errorf("cli: unknown -transport %q (want sim, tcp or chan)", f.Transport)
	}
}

// MustRun runs one experiment and exits the process on error.
func MustRun(ctx context.Context, cfg core.Config) *core.Result {
	res, err := core.Run(ctx, cfg)
	if err != nil {
		Fatal(err)
	}
	return res
}

// ShapesData deterministically generates the shapes16 dataset and splits
// off a test set — the setup stanza every accuracy example starts with.
func ShapesData(seed uint64, n, testN int) (train, test *data.Dataset) {
	r := rng.New(seed)
	return data.GenShapes16(r, n).Split(r.Split(1), testN)
}

// SpeedupBase is the single-GPU throughput baseline (samples/s) speedup
// figures divide by.
func SpeedupBase(w costmodel.Workload) float64 {
	return float64(w.Batch) / w.MeanIterSec()
}

// Fatal prints the error prefixed with the program name and exits.
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	os.Exit(1)
}
