package main

import (
	"strings"
	"testing"
)

// TestTraceServerError enforces the fail-fast contract for the one
// unsupported -trace combination: -server must be rejected loudly, while
// every supported combination passes.
func TestTraceServerError(t *testing.T) {
	err := traceServerError("out.json", "http://127.0.0.1:7070")
	if err == nil {
		t.Fatal("-trace with -server must error, not silently no-op")
	}
	for _, want := range []string{"-trace", "out.json", "http://127.0.0.1:7070"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if err := traceServerError("out.json", ""); err != nil {
		t.Errorf("local -trace rejected: %v", err)
	}
	if err := traceServerError("", "http://127.0.0.1:7070"); err != nil {
		t.Errorf("traceless -server rejected: %v", err)
	}
	if err := traceServerError("", ""); err != nil {
		t.Errorf("no flags rejected: %v", err)
	}
}
