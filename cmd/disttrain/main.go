// Command disttrain runs a single distributed-training experiment from
// flags and prints its metrics — the interactive counterpart to the
// paperbench grid.
//
// Cost-only (performance) run:
//
//	disttrain -algo asp -workers 24 -model vgg16 -gbps 10 -iters 30 -shard layerwise
//
// Real-math (accuracy) run on the synthetic shapes task:
//
//	disttrain -algo adpsgd -workers 8 -iters 200 -real -dataset shapes16 -net minicnn
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/grad"
	"disttrain/internal/metrics"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/report"
	"disttrain/internal/rng"
	"disttrain/internal/trace"
)

func main() {
	var (
		algo     = flag.String("algo", "bsp", "algorithm: bsp|asp|ssp|easgd|arsgd|gosgd|adpsgd|dpsgd|hogwild|adacomm")
		jsonOut  = flag.Bool("json", false, "emit a JSON summary instead of tables")
		workers  = flag.Int("workers", 8, "number of workers (GPUs)")
		model    = flag.String("model", "resnet50", "cost model: resnet50|vgg16")
		gbps     = flag.Float64("gbps", 56, "inter-machine bandwidth (10 or 56)")
		iters    = flag.Int("iters", 30, "training iterations per worker")
		seed     = flag.Uint64("seed", 1, "random seed")
		shard    = flag.String("shard", "none", "PS sharding: none|layerwise|balanced")
		wfbp     = flag.Bool("wfbp", false, "enable wait-free backpropagation")
		dgc      = flag.Bool("dgc", false, "enable deep gradient compression")
		localAgg = flag.Bool("localagg", false, "enable BSP local aggregation")
		stale    = flag.Int("staleness", 3, "SSP staleness threshold s")
		tau      = flag.Int("tau", 8, "EASGD communication period")
		gossipP  = flag.Float64("p", 0.01, "GoSGD gossip probability")
		lr       = flag.Float64("lr", 0.1, "learning-rate base")

		sweep    = flag.String("sweep", "", "comma-separated worker counts; runs the config per count and prints a speedup figure (cost-only)")
		traceOut = flag.String("traceout", "", "write a Chrome trace (chrome://tracing) of the run to this path")
		real     = flag.Bool("real", false, "real gradient math (accuracy mode)")
		dataset  = flag.String("dataset", "shapes16", "real mode dataset: shapes16|gauss|spiral")
		netName  = flag.String("net", "minicnn", "real mode model: mlp|minicnn|miniresnet|minivgg")
		batch    = flag.Int("batch", 8, "real mode per-worker batch size")
	)
	flag.Parse()

	profile, err := costmodel.ProfileByName(*model)
	if err != nil {
		fatal(err)
	}
	var clu cluster.Config
	if *gbps >= 56 {
		clu = cluster.Paper56G(*workers)
	} else {
		clu = cluster.Paper10G(*workers)
	}
	cfg := core.Config{
		Algo:       core.Algo(*algo),
		Cluster:    clu,
		Workers:    *workers,
		Workload:   costmodel.NewWorkload(profile, costmodel.TitanV(), 128),
		Iters:      *iters,
		Seed:       *seed,
		Momentum:   0.9,
		LR:         opt.Schedule{Base: *lr},
		Staleness:  *stale,
		Tau:        *tau,
		GossipP:    *gossipP,
		Sharding:   core.Sharding(*shard),
		WaitFreeBP: *wfbp,
		LocalAgg:   *localAgg,
	}
	if *dgc {
		d := grad.DefaultDGC(0.9, *iters/5)
		cfg.DGC = &d
	}
	if *real {
		r := rng.New(*seed * 31)
		ds, err := data.ByName(*dataset, r, 4000)
		if err != nil {
			fatal(err)
		}
		trainDS, testDS := ds.Split(r.Split(1), 600)
		factory, err := nn.FactoryByName(*netName, ds.Classes)
		if err != nil {
			fatal(err)
		}
		cfg.WeightDecay = 1e-4
		cfg.LR = opt.Schedule{Base: *lr, WarmupIters: *iters / 20}
		cfg.Real = &core.RealConfig{
			Factory:   factory,
			Train:     trainDS,
			Test:      testDS,
			Batch:     *batch,
			EvalEvery: max(1, *iters/10),
			EvalMax:   500,
		}
	}

	if *sweep != "" {
		runSweep(cfg, *sweep, *gbps)
		return
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		cfg.Tracer = tracer
	}

	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing)\n", *traceOut)
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	t := report.Table{Title: fmt.Sprintf("%s on %s, %d workers @ %gGbps", *algo, *model, *workers, *gbps),
		Header: []string{"metric", "value"}}
	t.AddRow("virtual time", report.Fmt(res.VirtualSec, 3)+" s")
	t.AddRow("throughput", report.Fmt(res.Throughput, 1)+" samples/s")
	t.AddRow("speedup vs 1 GPU", report.Fmt(res.Throughput/(float64(cfg.Workload.Batch)/cfg.Workload.MeanIterSec()), 2)+"x")
	t.AddRow("total traffic", report.FmtBytes(float64(res.Net.TotalBytes)))
	t.AddRow("bytes/iter/worker", report.FmtBytes(res.BytesPerIterPerWorker))
	b := res.Metrics.MeanBreakdown()
	for _, ph := range []metrics.Phase{metrics.Compute, metrics.LocalAgg, metrics.GlobalAgg, metrics.Network} {
		t.AddRow("time: "+ph.String(), fmt.Sprintf("%s s (%.0f%%)", report.Fmt(b[ph], 3), 100*b.Frac(ph)))
	}
	if *real {
		t.AddRow("final test accuracy", report.Fmt(res.FinalTestAcc, 4))
		t.AddRow("final train loss", report.Fmt(res.FinalTrainLoss, 4))
	}
	fmt.Print(t.String())

	if *real && len(res.Metrics.Trace) > 0 {
		fig := report.Figure{Title: "convergence (test error vs iteration)"}
		s := fig.NewSeries("test-err")
		for _, tp := range res.Metrics.Trace {
			s.Add(float64(tp.Iter), tp.TestErr)
		}
		fmt.Println()
		fmt.Print(fig.String())
	}
}

// runSweep re-runs the configuration at each worker count and prints the
// speedup curve (table + ASCII chart) over the single-GPU baseline.
func runSweep(cfg core.Config, list string, gbps float64) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -sweep entry %q", part))
		}
		counts = append(counts, n)
	}
	fig := report.Figure{Title: fmt.Sprintf("%s %s speedup vs workers (%gGbps)",
		cfg.Algo, cfg.Workload.Profile.Name, gbps)}
	s := fig.NewSeries(string(cfg.Algo))
	base := float64(cfg.Workload.Batch) / cfg.Workload.MeanIterSec()
	for _, n := range counts {
		c := cfg
		if gbps >= 56 {
			c.Cluster = cluster.Paper56G(n)
		} else {
			c.Cluster = cluster.Paper10G(n)
		}
		c.Workers = n
		c.Real = nil // sweeps are cost-only
		if n < 2 && (c.Algo == core.ADPSGD || c.Algo == core.GoSGD) {
			s.Add(float64(n), 1)
			continue
		}
		res, err := core.Run(c)
		if err != nil {
			fatal(err)
		}
		s.Add(float64(n), res.Throughput/base)
	}
	fmt.Print(fig.String())
	fmt.Println()
	fmt.Print(fig.Chart(56, 12))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "disttrain:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
