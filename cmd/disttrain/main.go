// Command disttrain runs a single distributed-training experiment from
// flags and prints its metrics — the interactive counterpart to the
// paperbench grid.
//
// Cost-only (performance) run:
//
//	disttrain -algo asp -workers 24 -model vgg16 -gbps 10 -iters 30 -shard layerwise
//
// Real-math (accuracy) run on the synthetic shapes task:
//
//	disttrain -algo adpsgd -workers 8 -iters 200 -real -dataset shapes16 -net minicnn
//
// Fault-injection run (deterministic chaos):
//
//	disttrain -algo bsp -workers 8 -iters 60 -elastic -faults 'crash@iter20:w3:restart=5'
//
// Live run over real loopback TCP (wall-clock, see docs/LIVE.md):
//
//	disttrain -algo bsp -workers 4 -iters 50 -real -transport tcp
//
// Live multi-process run (one coordinator, N workers, possibly on other
// machines):
//
//	disttrain -algo arsgd -workers 2 -iters 50 -real -transport tcp -role coordinator -coord :9901
//	disttrain -algo arsgd -workers 2 -iters 50 -real -transport tcp -role worker -coord host:9901
//
// Remote run through the experiment control plane (cmd/expd, see
// docs/CONTROLPLANE.md) — the flags become an ExperimentSpec, the service
// runs it, and metrics stream back live:
//
//	disttrain -server http://127.0.0.1:7070 -algo bsp -workers 4 -iters 50 -real -transport tcp
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"disttrain/internal/api"
	"disttrain/internal/cli"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/live"
	"disttrain/internal/report"
	"disttrain/internal/trace"
)

func main() {
	f := cli.Register(flag.CommandLine)
	var (
		jsonOut       = flag.Bool("json", false, "emit the unified RunResult JSON instead of tables")
		sweep         = flag.String("sweep", "", "comma-separated worker counts; runs the config per count and prints a speedup figure (cost-only)")
		tracePath     = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the run to this path; virtual-time spans for -transport=sim, wall-clock spans for tcp/chan")
		metricsListen = flag.String("metricslisten", "", "serve Prometheus-text GET /metrics on this address for the duration of a live run (e.g. 127.0.0.1:9102)")
		server        = flag.String("server", "", "submit to a control-plane service at this URL (cmd/expd) instead of running locally")
	)
	flag.StringVar(tracePath, "traceout", "", "deprecated alias for -trace")
	flag.Parse()

	ctx, stop := cli.Context()
	defer stop()

	if *server != "" {
		if err := traceServerError(*tracePath, *server); err != nil {
			cli.Fatal(err)
		}
		if *sweep != "" || *metricsListen != "" || f.Role != "" || f.Rejoin >= 0 {
			cli.Fatal(fmt.Errorf("-sweep, -metricslisten, -role and -rejoin are local-only (the service runs whole experiments; cmd/expd serves its own /metrics)"))
		}
		runRemote(ctx, f, *server, *jsonOut)
		return
	}

	cfg, err := f.Config()
	if err != nil {
		cli.Fatal(err)
	}

	if f.Transport != "sim" {
		if *sweep != "" {
			cli.Fatal(fmt.Errorf("-sweep is simulator-only"))
		}
		var extra []live.Option
		var tracer *trace.Tracer
		if *tracePath != "" {
			tracer = trace.New()
			extra = append(extra, live.WithTracer(tracer))
		}
		if *metricsListen != "" {
			m := live.NewMetrics()
			serveMetrics(*metricsListen, m)
			extra = append(extra, live.WithMetrics(m))
		}
		res, err := f.RunLive(cfg, extra...)
		if err != nil {
			cli.Fatal(err)
		}
		// Worker roles return a nil Result (the coordinator owns it) but
		// still traced their own ranks, so the trace is written regardless.
		if tracer != nil {
			writeTrace(tracer, *tracePath)
		}
		if res == nil {
			return
		}
		printResult(api.FromLive(res), speedupBase(f), *jsonOut)
		return
	}

	if *metricsListen != "" {
		cli.Fatal(fmt.Errorf("-metricslisten is live-only (sim runs have no transport to scrape; use -transport tcp or chan)"))
	}
	if *sweep != "" {
		if *tracePath != "" {
			cli.Fatal(fmt.Errorf("-trace captures a single run; it cannot combine with -sweep"))
		}
		runSweep(ctx, cfg, *sweep, f.Gbps)
		return
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New()
		cfg.Tracer = tracer
	}

	res := cli.MustRun(ctx, cfg)
	if tracer != nil {
		writeTrace(tracer, *tracePath)
	}
	printResult(api.FromCore(res), speedupBase(f), *jsonOut)
}

// traceServerError rejects the one -trace combination that cannot work:
// submission to a control-plane service, which runs the experiment in its
// own process and has nowhere to write the caller's local trace file.
// Returns nil when either flag is unset.
func traceServerError(tracePath, server string) error {
	if tracePath == "" || server == "" {
		return nil
	}
	return fmt.Errorf("-trace is local-only: the service at %s runs the experiment in its own process and cannot write %s (run without -server to capture a trace)", server, tracePath)
}

// writeTrace writes the collected trace to path, dying on any I/O error —
// a requested trace must never be silently dropped.
func writeTrace(tr *trace.Tracer, path string) {
	w, err := os.Create(path)
	if err != nil {
		cli.Fatal(err)
	}
	if err := tr.WriteJSON(w); err != nil {
		cli.Fatal(err)
	}
	if err := w.Close(); err != nil {
		cli.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing)\n", path)
}

// serveMetrics exposes the live collector on addr for the duration of the
// run: `curl http://addr/metrics`. The listener dies with the process; a
// bind failure is fatal so a requested scrape endpoint never silently
// fails to exist.
func serveMetrics(addr string, m *live.Metrics) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cli.Fatal(fmt.Errorf("-metricslisten %s: %w", addr, err))
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m)
	fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
	go http.Serve(ln, mux)
}

// runRemote submits the flags' spec to a control-plane service, streams its
// metrics to stderr while it runs, and prints the final result exactly as a
// local run would — for sim jobs the -json bytes are identical to a local
// export, which is the round-trip contract docs/CONTROLPLANE.md documents.
func runRemote(ctx context.Context, f *cli.Flags, base string, jsonOut bool) {
	spec, err := f.Spec()
	if err != nil {
		cli.Fatal(err)
	}
	client := &api.Client{Base: base}
	st, err := client.Submit(ctx, spec)
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%s)\n", st.ID, st.State)
	if err := client.StreamMetrics(ctx, st.ID, func(p api.MetricPoint) {
		switch {
		case p.Worker < 0:
			fmt.Fprintf(os.Stderr, "iter %4d  epoch %.2f  loss %.4f  test-err %.4f\n",
				p.Iter, p.Epoch, p.TrainLoss, p.TestErr)
		case p.Worker == 0:
			// One rank stands in for all of them on the live path; the full
			// per-worker stream stays available on the metrics endpoint.
			fmt.Fprintf(os.Stderr, "w0 iter %4d  loss %.4f\n", p.Iter, p.TrainLoss)
		}
	}); err != nil {
		cli.Fatal(err)
	}
	st, err = client.Wait(ctx, st.ID, 0)
	if err != nil {
		cli.Fatal(err)
	}
	if st.State != api.StateDone {
		cli.Fatal(fmt.Errorf("experiment %s %s: %s", st.ID, st.State, st.Error))
	}
	if jsonOut {
		raw, err := client.ResultJSON(ctx, st.ID)
		if err != nil {
			cli.Fatal(err)
		}
		os.Stdout.Write(raw)
		return
	}
	printResult(st.Result, speedupBase(f), false)
}

// printResult renders the unified result: raw RunResult JSON in -json mode,
// the shared report table (plus the convergence figure when the run traced
// one) otherwise.
func printResult(res *api.RunResult, speedupBase float64, jsonOut bool) {
	if jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			cli.Fatal(err)
		}
		return
	}
	fmt.Print(report.ResultTable(res, speedupBase).String())
	if fig := report.ConvergenceFigure(res); fig != nil {
		fmt.Println()
		fmt.Print(fig.String())
	}
}

// speedupBase computes the single-GPU samples/s baseline from the flags'
// cost-model profile (0 hides the speedup row if the profile is unknown —
// the run itself would have failed first).
func speedupBase(f *cli.Flags) float64 {
	profile, err := costmodel.ProfileByName(f.Model)
	if err != nil {
		return 0
	}
	return cli.SpeedupBase(costmodel.NewWorkload(profile, costmodel.TitanV(), 128))
}

// runSweep re-runs the configuration at each worker count and prints the
// speedup curve (table + ASCII chart) over the single-GPU baseline.
func runSweep(ctx context.Context, cfg core.Config, list string, gbps float64) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			cli.Fatal(fmt.Errorf("bad -sweep entry %q", part))
		}
		counts = append(counts, n)
	}
	fig := report.Figure{Title: fmt.Sprintf("%s %s speedup vs workers (%gGbps)",
		cfg.Algo, cfg.Workload.Profile.Name, gbps)}
	s := fig.NewSeries(string(cfg.Algo))
	base := cli.SpeedupBase(cfg.Workload)
	for _, n := range counts {
		c := cfg
		c.Cluster = cli.Cluster(gbps, n)
		c.Workers = n
		c.Real = nil // sweeps are cost-only
		if n < 2 && (c.Algo == core.ADPSGD || c.Algo == core.GoSGD) {
			s.Add(float64(n), 1)
			continue
		}
		res := cli.MustRun(ctx, c)
		s.Add(float64(n), res.Throughput/base)
	}
	fmt.Print(fig.String())
	fmt.Println()
	fmt.Print(fig.Chart(56, 12))
}
