// Command disttrain runs a single distributed-training experiment from
// flags and prints its metrics — the interactive counterpart to the
// paperbench grid.
//
// Cost-only (performance) run:
//
//	disttrain -algo asp -workers 24 -model vgg16 -gbps 10 -iters 30 -shard layerwise
//
// Real-math (accuracy) run on the synthetic shapes task:
//
//	disttrain -algo adpsgd -workers 8 -iters 200 -real -dataset shapes16 -net minicnn
//
// Fault-injection run (deterministic chaos):
//
//	disttrain -algo bsp -workers 8 -iters 60 -elastic -faults 'crash@iter20:w3:restart=5'
//
// Live run over real loopback TCP (wall-clock, see docs/LIVE.md):
//
//	disttrain -algo bsp -workers 4 -iters 50 -real -transport tcp
//
// Live multi-process run (one coordinator, N workers, possibly on other
// machines):
//
//	disttrain -algo arsgd -workers 2 -iters 50 -real -transport tcp -role coordinator -coord :9901
//	disttrain -algo arsgd -workers 2 -iters 50 -real -transport tcp -role worker -coord host:9901
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"disttrain/internal/cli"
	"disttrain/internal/core"
	"disttrain/internal/live"
	"disttrain/internal/metrics"
	"disttrain/internal/report"
	"disttrain/internal/trace"
)

func main() {
	f := cli.Register(flag.CommandLine)
	var (
		jsonOut  = flag.Bool("json", false, "emit a JSON summary instead of tables")
		sweep    = flag.String("sweep", "", "comma-separated worker counts; runs the config per count and prints a speedup figure (cost-only)")
		traceOut = flag.String("traceout", "", "write a Chrome trace (chrome://tracing) of the run to this path")
	)
	flag.Parse()

	cfg, err := f.Config()
	if err != nil {
		cli.Fatal(err)
	}
	ctx, stop := cli.Context()
	defer stop()

	if f.Transport != "sim" {
		if *sweep != "" || *traceOut != "" {
			cli.Fatal(fmt.Errorf("-sweep and -traceout are simulator-only"))
		}
		res, err := f.RunLive(cfg)
		if err != nil {
			cli.Fatal(err)
		}
		if res == nil {
			return // worker role: the coordinator process owns the Result
		}
		printLive(f, res, *jsonOut)
		return
	}

	if *sweep != "" {
		runSweep(ctx, cfg, *sweep, f.Gbps)
		return
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		cfg.Tracer = tracer
	}

	res := cli.MustRun(ctx, cfg)
	if tracer != nil {
		w, err := os.Create(*traceOut)
		if err != nil {
			cli.Fatal(err)
		}
		if err := tracer.WriteJSON(w); err != nil {
			cli.Fatal(err)
		}
		if err := w.Close(); err != nil {
			cli.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing)\n", *traceOut)
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			cli.Fatal(err)
		}
		return
	}

	t := report.Table{Title: fmt.Sprintf("%s on %s, %d workers @ %gGbps", f.Algo, f.Model, f.Workers, f.Gbps),
		Header: []string{"metric", "value"}}
	t.AddRow("virtual time", report.Fmt(res.VirtualSec, 3)+" s")
	t.AddRow("throughput", report.Fmt(res.Throughput, 1)+" samples/s")
	t.AddRow("speedup vs 1 GPU", report.Fmt(res.Throughput/cli.SpeedupBase(cfg.Workload), 2)+"x")
	t.AddRow("total traffic", report.FmtBytes(float64(res.Net.TotalBytes)))
	t.AddRow("bytes/iter/worker", report.FmtBytes(res.BytesPerIterPerWorker))
	b := res.Metrics.MeanBreakdown()
	for _, ph := range []metrics.Phase{metrics.Compute, metrics.LocalAgg, metrics.GlobalAgg, metrics.Network} {
		t.AddRow("time: "+ph.String(), fmt.Sprintf("%s s (%.0f%%)", report.Fmt(b[ph], 3), 100*b.Frac(ph)))
	}
	if fs := res.Metrics.Faults; fs.Any() || res.StalledWorkers > 0 {
		t.AddRow("faults", fmt.Sprintf("%d crashes, %d restarts, %d timeouts", fs.Crashes, fs.Restarts, fs.Timeouts))
		t.AddRow("iterations lost/recovered", fmt.Sprintf("%d / %d", fs.LostIters, fs.RecoveredIters))
		if res.Net.DroppedMsgs > 0 {
			t.AddRow("messages dropped", fmt.Sprintf("%d (%s)", res.Net.DroppedMsgs, report.FmtBytes(float64(res.Net.DroppedBytes))))
		}
		if res.StalledWorkers > 0 {
			t.AddRow("stalled workers", strconv.Itoa(res.StalledWorkers)+" (run never finished; throughput reported as 0)")
		}
	}
	if f.Real {
		t.AddRow("final test accuracy", report.Fmt(res.FinalTestAcc, 4))
		t.AddRow("final train loss", report.Fmt(res.FinalTrainLoss, 4))
	}
	fmt.Print(t.String())

	if f.Real && len(res.Metrics.Trace) > 0 {
		fig := report.Figure{Title: "convergence (test error vs iteration)"}
		s := fig.NewSeries("test-err")
		for _, tp := range res.Metrics.Trace {
			s.Add(float64(tp.Iter), tp.TestErr)
		}
		fmt.Println()
		fmt.Print(fig.String())
	}
}

// printLive reports a live run: the Summary in JSON mode, a wall-clock
// metrics table otherwise.
func printLive(f *cli.Flags, res *live.Result, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Summary()); err != nil {
			cli.Fatal(err)
		}
		return
	}
	t := report.Table{Title: fmt.Sprintf("%s live (%s), %d workers", f.Algo, res.Transport, f.Workers),
		Header: []string{"metric", "value"}}
	t.AddRow("wall time", report.Fmt(res.WallSec, 3)+" s")
	t.AddRow("throughput", report.Fmt(res.Throughput, 1)+" samples/s (wall)")
	t.AddRow("frames sent", strconv.FormatInt(res.Net.FramesSent, 10))
	t.AddRow("bytes sent", report.FmtBytes(float64(res.Net.BytesSent)))
	if res.Net.Kills > 0 || res.Net.Redials > 0 {
		t.AddRow("connection kills/redials", fmt.Sprintf("%d / %d", res.Net.Kills, res.Net.Redials))
	}
	if res.Net.Partitioned > 0 {
		t.AddRow("partition-stalled sends", strconv.FormatInt(res.Net.Partitioned, 10))
	}
	if res.Deaths > 0 || res.Rejoins > 0 {
		t.AddRow("deaths/rejoins/restores", fmt.Sprintf("%d / %d / %d",
			res.Deaths, res.Rejoins, res.Restores))
	}
	t.AddRow("final test accuracy", report.Fmt(res.FinalTestAcc, 4))
	t.AddRow("final train loss", report.Fmt(res.FinalTrainLoss, 4))
	fmt.Print(t.String())
}

// runSweep re-runs the configuration at each worker count and prints the
// speedup curve (table + ASCII chart) over the single-GPU baseline.
func runSweep(ctx context.Context, cfg core.Config, list string, gbps float64) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			cli.Fatal(fmt.Errorf("bad -sweep entry %q", part))
		}
		counts = append(counts, n)
	}
	fig := report.Figure{Title: fmt.Sprintf("%s %s speedup vs workers (%gGbps)",
		cfg.Algo, cfg.Workload.Profile.Name, gbps)}
	s := fig.NewSeries(string(cfg.Algo))
	base := cli.SpeedupBase(cfg.Workload)
	for _, n := range counts {
		c := cfg
		c.Cluster = cli.Cluster(gbps, n)
		c.Workers = n
		c.Real = nil // sweeps are cost-only
		if n < 2 && (c.Algo == core.ADPSGD || c.Algo == core.GoSGD) {
			s.Add(float64(n), 1)
			continue
		}
		res := cli.MustRun(ctx, c)
		s.Add(float64(n), res.Throughput/base)
	}
	fmt.Print(fig.String())
	fmt.Println()
	fmt.Print(fig.Chart(56, 12))
}
