// Command benchrecord measures end-to-end real-math training wall time
// across compute-pool sizes and records the results as BENCH_<date>.json —
// a machine-readable snapshot of what the sched pool buys on this host.
//
//	go run ./cmd/benchrecord            # writes BENCH_YYYY-MM-DD.json
//	go run ./cmd/benchrecord -o out.json -reps 5
//
// Each cell runs the same fixed-seed MiniCNN experiment (so every pool size
// produces byte-identical training results; only wall time may differ) and
// keeps the best of -reps repetitions. Speedup is relative to the inline
// pool=0 baseline of the same algorithm. On a single-core host the speedup
// stays ~1x by construction — the record of that is the point.
//
// A second grid compares the simulator against the live loopback-TCP
// transport (internal/live) for BSP at 2 and 4 workers, recording wall-clock
// images/sec for each — the real cost of moving the same frames over
// sockets instead of virtual time.
//
// A third grid times the serial GEMM kernel at the three paper-model shapes
// the Gemm benchmarks use and records GFLOPS per shape — the artifact behind
// the micro-kernel table in docs/PERFORMANCE.md.
//
// A fourth grid reruns the live BSP loopback at 4 workers once per gradient
// codec (dense / int8 / fp16), recording the encoded size of one gradient
// upload frame, its reduction versus the dense frame, and the run's total
// payload bytes on the wire.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/grad"
	"disttrain/internal/live"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
	"disttrain/internal/tensor"
	"disttrain/internal/xport"
)

type cell struct {
	Algo       string  `json:"algo"`
	Pool       int     `json:"pool"`
	WallSec    float64 `json:"wall_sec"`
	VirtualSec float64 `json:"virtual_sec"`
	Iters      int     `json:"iters"`
	Workers    int     `json:"workers"`
	Speedup    float64 `json:"speedup_vs_pool0"`
	Transport  string  `json:"transport,omitempty"`
	ImagesSec  float64 `json:"images_per_sec,omitempty"`
	// GEMM grid: kernel shape and measured serial throughput.
	Shape  string  `json:"shape,omitempty"`
	GFLOPS float64 `json:"gflops,omitempty"`
	// Wire grid: gradient codec, the encoded size of one gradient upload
	// frame, its size reduction versus the dense float32 frame, and the
	// run's total payload bytes sent (all frame kinds, every rank).
	Codec              string  `json:"codec,omitempty"`
	GradFrameBytes     int     `json:"grad_frame_bytes,omitempty"`
	GradFrameReduction float64 `json:"grad_frame_reduction_vs_dense,omitempty"`
	WireBytesSent      int64   `json:"wire_bytes_sent,omitempty"`
}

type record struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// DegradedHost flags artifacts recorded on a single-core host, where
	// every pooled configuration collapses to serial execution and the
	// pool-size comparison measures scheduling overhead, not parallelism.
	DegradedHost bool   `json:"degraded_host,omitempty"`
	Reps         int    `json:"reps"`
	Cells        []cell `json:"cells"`
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	reps := flag.Int("reps", 3, "repetitions per cell; best wall time wins")
	iters := flag.Int("iters", 15, "training iterations per run")
	workers := flag.Int("workers", 8, "simulated workers")
	flag.Parse()

	r := rng.New(42)
	ds := data.GenShapes16(r, 800)
	trainDS, testDS := ds.Split(r.Split(1), 160)
	mk := func(algo core.Algo, pool int) core.Config {
		cfg := core.Config{
			Algo:     algo,
			Cluster:  cluster.Paper56G(*workers),
			Workers:  *workers,
			Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
			Iters:    *iters,
			Seed:     7,
			Momentum: 0.9,
			LR:       opt.Schedule{Base: 0.05},
			PoolSize: pool,
			Real: &core.RealConfig{
				Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
				Train:   trainDS,
				Test:    testDS,
				Batch:   16,
				EvalMax: 64,
			},
		}
		return cfg
	}

	rec := record{
		Date:         time.Now().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		DegradedHost: runtime.NumCPU() == 1,
		Reps:         *reps,
	}
	if rec.DegradedHost {
		fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
		fmt.Fprintln(os.Stderr, "WARNING: single-core host (runtime.NumCPU() == 1).")
		fmt.Fprintln(os.Stderr, "Every pool size runs serially here, so pool-size comparisons measure")
		fmt.Fprintln(os.Stderr, "scheduling overhead, not parallel speedup. The artifact is stamped")
		fmt.Fprintln(os.Stderr, `"degraded_host": true; do not use it to compare pooled throughput.`)
		fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
	}
	baseline := map[string]float64{}
	for _, algo := range []core.Algo{core.BSP, core.ASP} {
		for _, pool := range []int{0, 1, 4, 8, 16} {
			cfg := mk(algo, pool)
			best := 0.0
			var virt float64
			for rep := 0; rep < *reps; rep++ {
				t0 := time.Now()
				res, err := core.Run(context.Background(), cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchrecord: %s pool=%d: %v\n", algo, pool, err)
					os.Exit(1)
				}
				wall := time.Since(t0).Seconds()
				if best == 0 || wall < best {
					best = wall
				}
				virt = res.VirtualSec
			}
			c := cell{Algo: string(algo), Pool: pool, WallSec: best,
				VirtualSec: virt, Iters: *iters, Workers: *workers}
			if pool == 0 {
				baseline[c.Algo] = best
			}
			if b := baseline[c.Algo]; b > 0 {
				c.Speedup = b / best
			}
			rec.Cells = append(rec.Cells, c)
			fmt.Printf("%-6s pool=%-2d wall %.3fs  speedup %.2fx\n", algo, pool, best, c.Speedup)
		}
	}

	// Live-vs-sim grid: the same BSP configuration once through the
	// virtual-time simulator and once over real loopback TCP, reporting
	// wall-clock images/sec side by side.
	for _, w := range []int{2, 4} {
		cfg := mk(core.BSP, 0)
		cfg.Workers = w
		cfg.Cluster = cluster.Paper56G(w)
		for _, transport := range []string{"sim", "tcp"} {
			best := 0.0
			totalIters := 0
			for rep := 0; rep < *reps; rep++ {
				var wall float64
				var iters int
				if transport == "sim" {
					t0 := time.Now()
					if _, err := core.Run(context.Background(), cfg); err != nil {
						fmt.Fprintf(os.Stderr, "benchrecord: bsp sim w=%d: %v\n", w, err)
						os.Exit(1)
					}
					wall = time.Since(t0).Seconds()
					iters = w * cfg.Iters // faultless BSP completes every iteration
				} else {
					res, err := live.RunLoopback(cfg)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchrecord: bsp tcp w=%d: %v\n", w, err)
						os.Exit(1)
					}
					wall = res.WallSec
					iters = 0
					for _, it := range res.WorkerIters {
						iters += it
					}
				}
				if best == 0 || wall < best {
					best = wall
					totalIters = iters
				}
			}
			c := cell{Algo: "bsp", WallSec: best, Iters: *iters, Workers: w, Transport: transport}
			if best > 0 {
				c.ImagesSec = float64(totalIters*cfg.Real.Batch) / best
			}
			rec.Cells = append(rec.Cells, c)
			fmt.Printf("bsp    %-4s w=%-2d  wall %.3fs  %.1f images/s\n", transport, w, best, c.ImagesSec)
		}
	}

	// GEMM throughput grid: the serial MatMul kernel at the paper-model
	// shapes BenchmarkGemm uses, best of -reps single calls per shape.
	for _, sh := range []struct {
		name    string
		m, k, n int
	}{
		{"ResNet50Conv_256x2304x196", 256, 2304, 196},
		{"VGG16Conv_128x1152x3136", 128, 1152, 3136},
		{"DenseHead_256x4096x100", 256, 4096, 100},
	} {
		a := tensor.New(sh.m, sh.k)
		b := tensor.New(sh.k, sh.n)
		cT := tensor.New(sh.m, sh.n)
		for i := range a.Data {
			a.Data[i] = float32(i%61)*0.03 - 0.9
		}
		for i := range b.Data {
			b.Data[i] = float32(i%53)*0.02 - 0.5
		}
		tensor.MatMul(a, b, cT) // warm caches and the dispatch path
		best := 0.0
		for rep := 0; rep < *reps; rep++ {
			t0 := time.Now()
			tensor.MatMul(a, b, cT)
			if dt := time.Since(t0).Seconds(); best == 0 || dt < best {
				best = dt
			}
		}
		flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
		c := cell{Algo: "gemm", Shape: sh.name, WallSec: best, GFLOPS: flops / best / 1e9}
		rec.Cells = append(rec.Cells, c)
		fmt.Printf("gemm   %-26s %.2f GFLOPS\n", sh.name, c.GFLOPS)
	}

	// Wire grid: the live BSP loopback at 4 workers per gradient codec. The
	// gradient-frame sizes are computed exactly from the model's parameter
	// count (the frame codec is deterministic); wire_bytes_sent is the
	// transport's measured total across all frame kinds and ranks, so its
	// ratio understates the per-gradient-frame reduction.
	vecLen := nn.NewMiniCNN(rng.New(1), data.ShapeClasses).NumParams()
	denseFrame := (&xport.Frame{Vec: make([]float32, vecLen)}).EncodedLen()
	frameBytes := func(codec string) int {
		var qv xport.QuantVec
		switch codec {
		case "dense":
			return denseFrame
		case "int8":
			q := grad.Quantize8(make([]float32, vecLen))
			qv = xport.QuantVec{Codec: xport.QuantInt8, Scale: q.Scale, I8: q.Q}
		case "f16":
			qv = xport.QuantVec{Codec: xport.QuantF16, H16: make([]uint16, vecLen)}
		}
		return (&xport.Frame{Data: qv.AppendEncode(nil)}).EncodedLen()
	}
	for _, codec := range []string{"dense", "int8", "f16"} {
		cfg := mk(core.BSP, 0)
		cfg.Workers = 4
		cfg.Cluster = cluster.Paper56G(4)
		cfg.Quantize8 = codec == "int8"
		cfg.QuantizeF16 = codec == "f16"
		best := 0.0
		var sent int64
		for rep := 0; rep < *reps; rep++ {
			res, err := live.RunLoopback(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrecord: bsp tcp codec=%s: %v\n", codec, err)
				os.Exit(1)
			}
			if best == 0 || res.WallSec < best {
				best = res.WallSec
				sent = res.Net.BytesSent
			}
		}
		c := cell{Algo: "bsp", Transport: "tcp", Workers: 4, Iters: *iters,
			WallSec: best, Codec: codec, GradFrameBytes: frameBytes(codec),
			WireBytesSent: sent}
		c.GradFrameReduction = float64(denseFrame) / float64(c.GradFrameBytes)
		rec.Cells = append(rec.Cells, c)
		fmt.Printf("bsp    tcp  codec=%-5s grad frame %6d B (%.2fx vs dense)  total sent %d B\n",
			codec, c.GradFrameBytes, c.GradFrameReduction, sent)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rec.Date + ".json"
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
