// Command benchrecord measures end-to-end real-math training wall time
// across compute-pool sizes and records the results as BENCH_<date>.json —
// a machine-readable snapshot of what the sched pool buys on this host.
//
//	go run ./cmd/benchrecord            # writes BENCH_YYYY-MM-DD.json
//	go run ./cmd/benchrecord -o out.json -reps 5
//
// Each cell runs the same fixed-seed MiniCNN experiment (so every pool size
// produces byte-identical training results; only wall time may differ) and
// keeps the best of -reps repetitions. Speedup is relative to the inline
// pool=0 baseline of the same algorithm. On a single-core host the speedup
// stays ~1x by construction — the record of that is the point.
//
// A second grid compares the simulator against the live loopback-TCP
// transport (internal/live) for BSP at 2 and 4 workers, recording wall-clock
// images/sec for each — the real cost of moving the same frames over
// sockets instead of virtual time.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/live"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

type cell struct {
	Algo       string  `json:"algo"`
	Pool       int     `json:"pool"`
	WallSec    float64 `json:"wall_sec"`
	VirtualSec float64 `json:"virtual_sec"`
	Iters      int     `json:"iters"`
	Workers    int     `json:"workers"`
	Speedup    float64 `json:"speedup_vs_pool0"`
	Transport  string  `json:"transport,omitempty"`
	ImagesSec  float64 `json:"images_per_sec,omitempty"`
}

type record struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// DegradedHost flags artifacts recorded on a single-core host, where
	// every pooled configuration collapses to serial execution and the
	// pool-size comparison measures scheduling overhead, not parallelism.
	DegradedHost bool   `json:"degraded_host,omitempty"`
	Reps         int    `json:"reps"`
	Cells        []cell `json:"cells"`
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	reps := flag.Int("reps", 3, "repetitions per cell; best wall time wins")
	iters := flag.Int("iters", 15, "training iterations per run")
	workers := flag.Int("workers", 8, "simulated workers")
	flag.Parse()

	r := rng.New(42)
	ds := data.GenShapes16(r, 800)
	trainDS, testDS := ds.Split(r.Split(1), 160)
	mk := func(algo core.Algo, pool int) core.Config {
		cfg := core.Config{
			Algo:     algo,
			Cluster:  cluster.Paper56G(*workers),
			Workers:  *workers,
			Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
			Iters:    *iters,
			Seed:     7,
			Momentum: 0.9,
			LR:       opt.Schedule{Base: 0.05},
			PoolSize: pool,
			Real: &core.RealConfig{
				Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
				Train:   trainDS,
				Test:    testDS,
				Batch:   16,
				EvalMax: 64,
			},
		}
		return cfg
	}

	rec := record{
		Date:         time.Now().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		DegradedHost: runtime.NumCPU() == 1,
		Reps:         *reps,
	}
	if rec.DegradedHost {
		fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
		fmt.Fprintln(os.Stderr, "WARNING: single-core host (runtime.NumCPU() == 1).")
		fmt.Fprintln(os.Stderr, "Every pool size runs serially here, so pool-size comparisons measure")
		fmt.Fprintln(os.Stderr, "scheduling overhead, not parallel speedup. The artifact is stamped")
		fmt.Fprintln(os.Stderr, `"degraded_host": true; do not use it to compare pooled throughput.`)
		fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
	}
	baseline := map[string]float64{}
	for _, algo := range []core.Algo{core.BSP, core.ASP} {
		for _, pool := range []int{0, 1, 4, 8, 16} {
			cfg := mk(algo, pool)
			best := 0.0
			var virt float64
			for rep := 0; rep < *reps; rep++ {
				t0 := time.Now()
				res, err := core.Run(context.Background(), cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchrecord: %s pool=%d: %v\n", algo, pool, err)
					os.Exit(1)
				}
				wall := time.Since(t0).Seconds()
				if best == 0 || wall < best {
					best = wall
				}
				virt = res.VirtualSec
			}
			c := cell{Algo: string(algo), Pool: pool, WallSec: best,
				VirtualSec: virt, Iters: *iters, Workers: *workers}
			if pool == 0 {
				baseline[c.Algo] = best
			}
			if b := baseline[c.Algo]; b > 0 {
				c.Speedup = b / best
			}
			rec.Cells = append(rec.Cells, c)
			fmt.Printf("%-6s pool=%-2d wall %.3fs  speedup %.2fx\n", algo, pool, best, c.Speedup)
		}
	}

	// Live-vs-sim grid: the same BSP configuration once through the
	// virtual-time simulator and once over real loopback TCP, reporting
	// wall-clock images/sec side by side.
	for _, w := range []int{2, 4} {
		cfg := mk(core.BSP, 0)
		cfg.Workers = w
		cfg.Cluster = cluster.Paper56G(w)
		for _, transport := range []string{"sim", "tcp"} {
			best := 0.0
			totalIters := 0
			for rep := 0; rep < *reps; rep++ {
				var wall float64
				var iters int
				if transport == "sim" {
					t0 := time.Now()
					if _, err := core.Run(context.Background(), cfg); err != nil {
						fmt.Fprintf(os.Stderr, "benchrecord: bsp sim w=%d: %v\n", w, err)
						os.Exit(1)
					}
					wall = time.Since(t0).Seconds()
					iters = w * cfg.Iters // faultless BSP completes every iteration
				} else {
					res, err := live.RunLoopback(cfg)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchrecord: bsp tcp w=%d: %v\n", w, err)
						os.Exit(1)
					}
					wall = res.WallSec
					iters = 0
					for _, it := range res.WorkerIters {
						iters += it
					}
				}
				if best == 0 || wall < best {
					best = wall
					totalIters = iters
				}
			}
			c := cell{Algo: "bsp", WallSec: best, Iters: *iters, Workers: w, Transport: transport}
			if best > 0 {
				c.ImagesSec = float64(totalIters*cfg.Real.Batch) / best
			}
			rec.Cells = append(rec.Cells, c)
			fmt.Printf("bsp    %-4s w=%-2d  wall %.3fs  %.1f images/s\n", transport, w, best, c.ImagesSec)
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rec.Date + ".json"
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
