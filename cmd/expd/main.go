// Command expd is the experiment control-plane daemon: a long-lived HTTP
// service that accepts api.ExperimentSpec submissions, runs them across the
// simulator and live backends with bounded concurrency, streams per-iteration
// metrics over SSE, and persists every result under -statedir so the record
// survives restarts.
//
// Usage:
//
//	expd -listen :7070 -statedir /var/lib/expd -concurrency 4
//
// Submit with the CLI (disttrain -server http://host:7070 ...) or plain curl:
//
//	curl -d '{"algo":"bsp","workers":4}' http://host:7070/v1/experiments
//
// See docs/CONTROLPLANE.md for the API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"disttrain/internal/ctlplane"
)

func main() {
	listen := flag.String("listen", ":7070", "HTTP listen address")
	stateDir := flag.String("statedir", "", "directory for persisted experiment artifacts (empty = in-memory only)")
	concurrency := flag.Int("concurrency", 4, "experiments run simultaneously")
	queueDepth := flag.Int("queue", 256, "accepted-but-not-started experiments held before submissions are rejected")
	flag.Parse()

	svc, err := ctlplane.NewService(ctlplane.ServiceOptions{
		StateDir:    *stateDir,
		Concurrency: *concurrency,
		QueueDepth:  *queueDepth,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "expd:", err)
		os.Exit(1)
	}
	httpSrv := ctlplane.NewHTTPServer(*listen, ctlplane.NewMux(svc))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The service comes up before the listener binds, so the API never
	// accepts a submission the worker pool isn't ready to take.
	var group ctlplane.Group
	group.Add("service", svc).Add("http", httpSrv)
	if err := group.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "expd:", err)
		os.Exit(1)
	}
	fmt.Printf("expd: serving on %s (state %s, concurrency %d)\n",
		httpSrv.BoundAddr, orDash(*stateDir), *concurrency)

	<-ctx.Done()
	fmt.Println("expd: shutting down (in-flight experiments drain; queued ones resume on restart)")
	group.Wait()
}

func orDash(s string) string {
	if s == "" {
		return "in-memory"
	}
	return s
}
