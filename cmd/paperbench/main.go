// Command paperbench regenerates every table and figure of the paper's
// evaluation section. Run it with no arguments for the full grid (minutes),
// with -quick for a seconds-long smoke pass, or with -exp to regenerate a
// single artifact:
//
//	paperbench                 # everything, paper-scale grid
//	paperbench -quick          # tiny models/datasets, same code paths
//	paperbench -exp fig2       # just the scalability figure
//	paperbench -list           # show available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"disttrain/internal/cli"
	"disttrain/internal/report"
	"disttrain/internal/train"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID to run (default: all); see -list")
		quick    = flag.Bool("quick", false, "small fast configuration instead of the paper grid")
		seed     = flag.Uint64("seed", 1, "master random seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		verbose  = flag.Bool("v", false, "log per-run progress to stderr")
		pool     = flag.Int("pool", 0, "compute pool goroutines for real gradient math (0 = one per CPU, <0 = serial inline)")
		htmlPath = flag.String("html", "", "also write a self-contained HTML report to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range train.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := train.Options{Quick: *quick, Seed: *seed, Pool: cli.PoolSize(*pool)}
	if *verbose {
		opts.Log = os.Stderr
	}

	var exps []train.Experiment
	if *exp == "" {
		exps = train.Experiments()
	} else {
		e, err := train.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []train.Experiment{e}
	}

	var htmlBlocks []string
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		htmlBlocks = append(htmlBlocks, "### "+e.ID+" — "+e.Title)
		blocks, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, b := range blocks {
			fmt.Println(b)
		}
		htmlBlocks = append(htmlBlocks, blocks...)
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if *htmlPath != "" {
		page := report.HTMLPage("disttrain paperbench report", htmlBlocks)
		if err := os.WriteFile(*htmlPath, []byte(page), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *htmlPath, err)
			os.Exit(1)
		}
		fmt.Printf("HTML report written to %s\n", *htmlPath)
	}
}
