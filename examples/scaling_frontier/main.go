// Scaling frontier: push the AllReduce collectives far past the paper's
// 24-worker testbed — 8 to 1024 simulated workers on both paper fabrics —
// and find each one's breaking point. The study sweeps the flat ring, the
// binomial tree, the machine-aware hierarchical collective, recursive
// halving/doubling (butterfly), and the 2D torus, then cross-checks the
// measured virtual times against the costmodel's first-order predictions.
//
// The checked-in STUDY.md in this directory is the full-grid output.
//
//	go run ./examples/scaling_frontier          # full grid (8..1024 workers)
//	go run ./examples/scaling_frontier -quick   # seconds-long smoke pass
package main

import (
	"flag"
	"fmt"
	"os"

	"disttrain/internal/cli"
	"disttrain/internal/train"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "small fast grid (8-16 workers) instead of 8-1024")
		seed    = flag.Uint64("seed", 1, "master random seed")
		verbose = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()

	opts := train.Options{Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Log = os.Stderr
	}
	e, err := train.ByID("scale")
	if err != nil {
		cli.Fatal(err)
	}
	blocks, err := e.Run(opts)
	if err != nil {
		cli.Fatal(err)
	}
	for _, b := range blocks {
		fmt.Println(b)
	}
	fmt.Println("Reading the tables: the flat ring is near bandwidth-optimal, so with")
	fmt.Println("full-size gradients it holds the frontier through the middle of the")
	fmt.Println("sweep. Its weakness is the 2(n-1)-step dependency chain: with small or")
	fmt.Println("DGC-compressed gradients every step pays the hop latency, and the")
	fmt.Println("hierarchical collective — 2(M-1) inter-machine steps plus cheap bus")
	fmt.Println("phases — wins at every multi-machine scale.")
}
