// Chaos study: the same deterministic fault schedule — a permanent worker
// crash, a transient compute brown-out, and a window of 5% message loss —
// replayed against faithful BSP, elastic BSP, and AD-PSGD.
//
// The three runs tell the fault-tolerance story of the paper's algorithm
// families: a faithful synchronous barrier stalls forever on the first
// permanent crash; elastic membership pays a small accuracy-relevant cost
// (the dead worker's iterations) but keeps the cluster busy; AD-PSGD's
// random pairwise gossip barely notices, because actives just re-draw
// partners away from the dead peer.
//
// The closing act replays a crash/restart schedule on the *live* TCP
// loopback runtime: two of four workers are killed mid-run, restore from
// checkpoints, and rejoin through the coordinator's REJOIN handshake.
//
//	go run ./examples/chaos_study
//	go run ./examples/chaos_study -faults 'crash@iter10:w2;degrade@5:x8:for=20'
//	go run ./examples/chaos_study -live=false   # simulator only
package main

import (
	"flag"
	"fmt"
	"os"

	"disttrain/internal/cli"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/fault"
	"disttrain/internal/live"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/report"
	"disttrain/internal/rng"
)

func main() {
	var (
		spec    = flag.String("faults", "crash@iter20:w3; slow@10:w1:x4:for=20; drop@15:p=0.05:for=20", "fault schedule spec")
		workers = flag.Int("workers", 8, "number of workers")
		iters   = flag.Int("iters", 60, "iterations per worker")
		liveRun = flag.Bool("live", true, "also run the crash/rejoin study on the live TCP loopback")
	)
	flag.Parse()

	sched, err := cli.LoadFaults(*spec, "")
	if err != nil {
		cli.Fatal(err)
	}
	ctx, stop := cli.Context()
	defer stop()

	build := func(algo core.Algo, elastic bool, faults *fault.Schedule) core.Config {
		return core.Config{
			Algo:     algo,
			Cluster:  cluster.Paper56G(*workers),
			Workers:  *workers,
			Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
			Iters:    *iters,
			Seed:     11,
			Momentum: 0.9,
			LR:       opt.Schedule{Base: 0.1},
			Elastic:  elastic,
			Faults:   faults,
		}
	}

	fmt.Println("schedule:")
	for _, e := range sched.Events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println()

	t := report.Table{
		Title: "one fault schedule, three recovery disciplines",
		Header: []string{"run", "virtual-sec", "samples/s", "iters lost",
			"timeouts", "dropped", "stalled"},
	}
	for _, rc := range []struct {
		name    string
		algo    core.Algo
		elastic bool
	}{
		{"BSP (faithful)", core.BSP, false},
		{"BSP (elastic)", core.BSP, true},
		{"AD-PSGD", core.ADPSGD, false},
	} {
		res := cli.MustRun(ctx, build(rc.algo, rc.elastic, sched))
		clean := cli.MustRun(ctx, build(rc.algo, rc.elastic, nil))
		f := res.Metrics.Faults
		thr := report.Fmt(res.Throughput, 0)
		if res.StalledWorkers > 0 {
			thr = "0 (hung)"
		}
		t.AddRow(rc.name,
			fmt.Sprintf("%s (clean %s)", report.Fmt(res.VirtualSec, 1), report.Fmt(clean.VirtualSec, 1)),
			thr,
			fmt.Sprintf("%d", f.LostIters),
			fmt.Sprintf("%d", f.Timeouts),
			fmt.Sprintf("%d", res.Net.DroppedMsgs),
			fmt.Sprintf("%d", res.StalledWorkers))
	}
	fmt.Print(t.String())
	fmt.Println("\nfaithful BSP freezes at the barrier of the crash round — its virtual")
	fmt.Println("time is just the stall point. elastic BSP drops the dead rank from the")
	fmt.Println("membership and finishes; AD-PSGD re-draws gossip partners away from")
	fmt.Println("the dead peer, so only the compute brown-out (which no algorithm can")
	fmt.Println("dodge) shows up in its time.")

	if *liveRun {
		fmt.Println()
		liveChaos()
	}
}

// liveChaos reruns the crash story on the live TCP loopback runtime: real
// sockets, real worker deaths at iteration boundaries, checkpoint restore,
// and re-admission through the coordinator's REJOIN handshake. With
// checkpoints every iteration the chaotic live run is bit-identical to the
// simulator's elastic mode under the same schedule.
func liveChaos() {
	const (
		workers = 4
		iters   = 12
		seed    = 42
	)
	r := rng.New(seed + 1000)
	ds := data.GenGauss(r, 600, 3, 0.45)
	train, test := ds.Split(r.Split(1), 120)
	cfg := core.Config{
		Algo:     core.BSP,
		Cluster:  cluster.Paper56G(workers),
		Workers:  workers,
		Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:    iters,
		Seed:     seed,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.05},
		Elastic:  true,
		Faults: &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Crash, AtIter: 4, Worker: 1, Restart: 0.1},
			{Kind: fault.Crash, AtIter: 6, Worker: 2, Restart: 0.1},
		}},
		Real: &core.RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMLP(rr, 2, 16, 3) },
			Train:   train,
			Test:    test,
			Batch:   16,
		},
	}
	dir, err := os.MkdirTemp("", "chaos-ckpt-*")
	if err != nil {
		cli.Fatal(err)
	}
	defer os.RemoveAll(dir)

	res, err := live.RunLoopback(cfg, live.WithCheckpoints(dir, 1))
	if err != nil {
		cli.Fatal(err)
	}
	t := report.Table{
		Title:  "live loopback chaos: elastic BSP, 2 scheduled kills with restart",
		Header: []string{"metric", "value"},
	}
	t.AddRow("wall time", report.Fmt(res.WallSec, 2)+" s")
	t.AddRow("deaths / rejoins / restores",
		fmt.Sprintf("%d / %d / %d", res.Deaths, res.Rejoins, res.Restores))
	t.AddRow("final test accuracy", report.Fmt(res.FinalTestAcc, 4))
	fmt.Print(t.String())
	fmt.Println("\nboth killed workers restored their replica (parameters, momentum,")
	fmt.Println("sampler position) from the latest checkpoint and re-entered the BSP")
	fmt.Println("barrier — the run's final parameters match the simulator bit-for-bit.")
}
