// Scalability sweep: how does each algorithm's training throughput scale
// with the number of workers on a slow vs a fast network? This is the
// paper's Figure 2 workload in cost-only mode — no gradient math, just the
// simulated cluster — so the whole sweep runs in well under a second.
//
//	go run ./examples/scalability_sweep
package main

import (
	"fmt"

	"disttrain/internal/cli"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/opt"
	"disttrain/internal/report"
)

func main() {
	ctx, stop := cli.Context()
	defer stop()
	algos := []core.Algo{core.BSP, core.ASP, core.ARSGD, core.ADPSGD}
	workerGrid := []int{1, 2, 4, 8, 16, 24}

	for _, bw := range []struct {
		name string
		mk   func(int) cluster.Config
	}{
		{"10Gbps Ethernet", cluster.Paper10G},
		{"56Gbps InfiniBand", cluster.Paper56G},
	} {
		fig := report.Figure{Title: "VGG-16 speedup vs workers — " + bw.name}
		for _, algo := range algos {
			s := fig.NewSeries(string(algo))
			for _, w := range workerGrid {
				if w < 2 && algo == core.ADPSGD {
					s.Add(float64(w), 1)
					continue
				}
				cfg := core.Config{
					Algo:     algo,
					Cluster:  bw.mk(w),
					Workers:  w,
					Workload: costmodel.NewWorkload(costmodel.VGG16(), costmodel.TitanV(), 96),
					Iters:    20,
					Seed:     1,
					Momentum: 0.9,
					LR:       opt.Schedule{Base: 0.1},
					LocalAgg: algo == core.BSP,
				}
				if algo.Centralized() {
					cfg.Sharding = core.ShardLayerWise
				}
				res := cli.MustRun(ctx, cfg)
				s.Add(float64(w), res.Throughput/cli.SpeedupBase(cfg.Workload))
			}
		}
		fmt.Print(fig.String())
		fmt.Println()
	}
	fmt.Println("note how the centralized algorithms flatten on the slow network (PS")
	fmt.Println("bottleneck) while AD-PSGD stays near-linear — the paper's Fig. 2 shape.")
}
