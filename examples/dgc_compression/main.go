// DGC walkthrough: deep gradient compression on ASP over a slow network —
// measure what the top-k sparsification does to traffic, training speed,
// and model accuracy (the paper's Fig. 4 + Table IV story).
//
//	go run ./examples/dgc_compression
package main

import (
	"fmt"

	"disttrain/internal/cli"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/grad"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/report"
	"disttrain/internal/rng"
)

func main() {
	train, test := cli.ShapesData(3, 2500, 400)
	ctx, stop := cli.Context()
	defer stop()
	const workers = 8
	const iters = 200

	build := func(withDGC bool) core.Config {
		cfg := core.Config{
			Algo:        core.ASP,
			Cluster:     cluster.Paper10G(workers), // slow network: DGC's home turf
			Workload:    costmodel.NewWorkload(costmodel.VGG16(), costmodel.TitanV(), 96),
			Iters:       iters,
			Seed:        3,
			Momentum:    0.9,
			WeightDecay: 1e-4,
			LR:          opt.NewPaperSchedule(0.002, 1, iters/20, []int{iters / 2}),
			Sharding:    core.ShardLayerWise,
			Real: &core.RealConfig{
				Factory:   func(rr *rng.RNG) *nn.Model { return nn.NewMiniVGG(rr, data.ShapeClasses) },
				Train:     train,
				Test:      test,
				Batch:     8,
				EvalEvery: 50,
				EvalMax:   400,
			},
		}
		if withDGC {
			// Note: scaled to the mini model — at 75k parameters a 5% ratio
			// plays the role the paper's 0.1% plays at 138M parameters.
			d := grad.DGCConfig{Ratio: 0.05, Momentum: 0.9, ClipNorm: 4, WarmupIters: iters / 3}
			cfg.DGC = &d
		}
		return cfg
	}

	base := cli.MustRun(ctx, build(false))
	dgc := cli.MustRun(ctx, build(true))

	t := report.Table{Title: "ASP + MiniVGG on a 10Gbps cluster, with and without DGC",
		Header: []string{"metric", "baseline", "with DGC"}}
	t.AddRow("gradient traffic",
		report.FmtBytes(float64(base.GradientBytes())),
		report.FmtBytes(float64(dgc.GradientBytes())))
	t.AddRow("total traffic",
		report.FmtBytes(float64(base.Net.TotalBytes)),
		report.FmtBytes(float64(dgc.Net.TotalBytes)))
	t.AddRow("virtual time (s)",
		report.Fmt(base.VirtualSec, 1), report.Fmt(dgc.VirtualSec, 1))
	t.AddRow("throughput (samples/s)",
		report.Fmt(base.Throughput, 0), report.Fmt(dgc.Throughput, 0))
	t.AddRow("final test accuracy",
		report.Fmt(base.FinalTestAcc, 4), report.Fmt(dgc.FinalTestAcc, 4))
	fmt.Print(t.String())
	fmt.Println("\nDGC slashes gradient traffic and speeds up the run while keeping")
	fmt.Println("accuracy — because skipped gradients accumulate locally instead of")
	fmt.Println("being dropped (Table IV's finding).")
}
