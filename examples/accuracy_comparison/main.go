// Accuracy comparison: pit all seven distributed training algorithms
// against each other on the same task, data shards and seed — the paper's
// Table II in miniature. Prints final accuracy and time-to-90%-accuracy so
// the accuracy/performance trade-off is visible in one table.
//
//	go run ./examples/accuracy_comparison
package main

import (
	"fmt"

	"disttrain/internal/cli"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/report"
	"disttrain/internal/rng"
)

func main() {
	train, test := cli.ShapesData(7, 3000, 500)
	ctx, stop := cli.Context()
	defer stop()
	const workers = 8
	const iters = 200

	table := report.Table{
		Title:  "seven algorithms, identical task and seed",
		Header: []string{"algorithm", "test-acc", "virtual-sec", "GB-moved", "sec-to-25%-err"},
	}

	for _, algo := range core.Algos() {
		lr := 0.005
		lrWorkers := 1
		switch {
		case algo.Synchronous():
			lrWorkers = workers
		case algo == core.ASP:
			lr = 0.002
		case algo == core.SSP:
			lr = 0.001
		}
		cfg := core.Config{
			Algo:        algo,
			Cluster:     cluster.Paper56G(workers),
			Workload:    costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
			Iters:       iters,
			Seed:        7,
			Momentum:    0.9,
			WeightDecay: 1e-4,
			LR:          opt.NewPaperSchedule(lr, lrWorkers, iters/20, []int{iters / 2, 4 * iters / 5}),
			Staleness:   3,
			Tau:         8,
			GossipP:     0.1,
			LocalAgg:    algo == core.BSP,
			Real: &core.RealConfig{
				Factory:   func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
				Train:     train,
				Test:      test,
				Batch:     8,
				EvalEvery: 20,
				EvalMax:   500,
			},
		}
		res := cli.MustRun(ctx, cfg)
		reach := "never"
		if at, ok := res.Metrics.TimeToErr(0.25); ok {
			reach = report.Fmt(at, 1)
		}
		table.AddRow(string(algo),
			report.Fmt(res.FinalTestAcc, 4),
			report.Fmt(res.VirtualSec, 1),
			report.Fmt(float64(res.Net.TotalBytes)/1e9, 1),
			reach)
		fmt.Printf("ran %s\n", algo)
	}
	fmt.Println()
	fmt.Print(table.String())
}
