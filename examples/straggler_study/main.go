// Straggler study (extension): inject occasional slow iterations and watch
// how synchronous vs asynchronous algorithms absorb them. The paper
// attributes most of BSP's aggregation time to waiting for stragglers; this
// example quantifies that by sweeping straggler frequency.
//
//	go run ./examples/straggler_study
package main

import (
	"fmt"

	"disttrain/internal/cli"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/opt"
	"disttrain/internal/report"
)

func main() {
	ctx, stop := cli.Context()
	defer stop()
	algos := []core.Algo{core.BSP, core.ARSGD, core.ASP, core.DPSGD, core.ADPSGD}
	probs := []float64{0, 0.05, 0.1, 0.2}

	t := report.Table{
		Title:  "throughput (samples/s) vs straggler probability — 16 workers, ResNet-50, 56Gbps, 6x stalls",
		Header: []string{"algorithm"},
	}
	for _, p := range probs {
		t.Header = append(t.Header, fmt.Sprintf("p=%g", p))
	}

	for _, algo := range algos {
		row := []string{string(algo)}
		var clean float64
		for _, p := range probs {
			cfg := core.Config{
				Algo:     algo,
				Cluster:  cluster.Paper56G(16),
				Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
				Iters:    60,
				Seed:     5,
				Momentum: 0.9,
				LR:       opt.Schedule{Base: 0.1},
				LocalAgg: algo == core.BSP,
				GossipP:  0.1,
				Tau:      8,
			}
			if algo.Centralized() {
				cfg.Sharding = core.ShardLayerWise
			}
			cfg.Workload.GPU.StragglerProb = p
			cfg.Workload.GPU.StragglerMult = 6
			res := cli.MustRun(ctx, cfg)
			if p == 0 {
				clean = res.Throughput
				row = append(row, report.Fmt(res.Throughput, 0))
			} else {
				row = append(row, fmt.Sprintf("%s (%.0f%%)", report.Fmt(res.Throughput, 0),
					100*res.Throughput/clean))
			}
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	fmt.Println("\npercentages are throughput retained relative to the straggler-free run;")
	fmt.Println("synchronous algorithms pay for every straggler with a full-cluster wait.")
}
