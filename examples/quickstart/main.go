// Quickstart: train a small CNN on the synthetic shapes dataset with
// data-parallel BSP across 8 simulated workers, then print the accuracy and
// where the training time went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"disttrain/internal/cli"
	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

func main() {
	// 1. A deterministic synthetic dataset (the ImageNet stand-in).
	train, test := cli.ShapesData(42, 3000, 500)

	// 2. An experiment: 8 workers on 2 machines, 56 Gbps network, BSP with
	//    local aggregation — the paper's baseline configuration.
	iters := 150
	cfg := core.Config{
		Algo:        core.BSP,
		Cluster:     cluster.Paper56G(8),
		Workload:    costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:       iters,
		Seed:        42,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		LR:          opt.NewPaperSchedule(0.005, 8, iters/10, []int{iters / 2, 4 * iters / 5}),
		LocalAgg:    true,
		Real: &core.RealConfig{
			Factory:   func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
			Train:     train,
			Test:      test,
			Batch:     8,
			EvalEvery: 30,
		},
	}

	// 3. Run it. cli.Context wires Ctrl-C into core.Run's cancellation;
	// MustRun exits with the validation error if the config is malformed.
	ctx, stop := cli.Context()
	defer stop()
	res := cli.MustRun(ctx, cfg)

	fmt.Printf("final test accuracy: %.3f\n", res.FinalTestAcc)
	fmt.Printf("virtual training time: %.1f s (as if on 8 TITAN V GPUs)\n", res.VirtualSec)
	fmt.Printf("network traffic: %.2f GB\n", float64(res.Net.TotalBytes)/1e9)
	b := res.Metrics.MeanBreakdown()
	fmt.Printf("time split: %.0f%% compute, %.0f%% local agg, %.0f%% global agg, %.0f%% network\n",
		100*b.Frac(0), 100*b.Frac(1), 100*b.Frac(2), 100*b.Frac(3))
	fmt.Println("\nconvergence:")
	for _, tp := range res.Metrics.Trace {
		fmt.Printf("  iter %4d  epoch %5.2f  err %.3f\n", tp.Iter, tp.Epoch, tp.TestErr)
	}
}
