// disttrain's root benchmark harness: one testing.B benchmark per
// table/figure of the paper, plus ablation benchmarks for the design
// choices DESIGN.md calls out. Each paper benchmark executes the same
// experiment preset cmd/paperbench runs (Quick configuration, so a full
// -bench=. pass stays fast) and reports domain metrics via b.ReportMetric.
//
// Regenerate the real paper-scale artifacts with:
//
//	go run ./cmd/paperbench
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/grad"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
	"disttrain/internal/train"
)

// benchExperiment runs one paper preset per iteration. Seeds cycle over a
// small set so the shared accuracy-run cache (table2/fig1) amortizes across
// iterations and a default `go test -bench=.` stays inside the default
// 10-minute package timeout.
func benchExperiment(b *testing.B, id string) {
	e, err := train.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(train.Options{Quick: true, Seed: uint64(i%3 + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// costCfg builds a cost-only config for ablation benchmarks.
func costCfg(algo core.Algo, workers int) core.Config {
	cfg := core.Config{
		Algo:     algo,
		Cluster:  cluster.Paper10G(workers),
		Workers:  workers,
		Workload: costmodel.NewWorkload(costmodel.VGG16(), costmodel.TitanV(), 96),
		Iters:    15,
		Seed:     1,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.1},
	}
	switch algo {
	case core.SSP:
		cfg.Staleness = 3
	case core.EASGD:
		cfg.Tau = 4
	case core.GoSGD:
		cfg.GossipP = 0.1
	}
	return cfg
}

func runReporting(b *testing.B, cfg core.Config) {
	b.Helper()
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Throughput, "virt-samples/s")
		b.ReportMetric(last.VirtualSec, "virt-sec")
	}
}

// BenchmarkAblationSharding contrasts layer-wise sharding (the paper's
// default, bottlenecked by VGG-16's fc1) with the balanced sharding its
// Section VI-C calls for.
func BenchmarkAblationSharding(b *testing.B) {
	for _, mode := range []core.Sharding{core.ShardNone, core.ShardLayerWise, core.ShardBalanced} {
		b.Run(string(mode), func(b *testing.B) {
			cfg := costCfg(core.ASP, 16)
			cfg.Sharding = mode
			runReporting(b, cfg)
		})
	}
}

// BenchmarkAblationLocalAgg measures BSP with and without intra-machine
// gradient aggregation.
func BenchmarkAblationLocalAgg(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := costCfg(core.BSP, 16)
			cfg.LocalAgg = on
			runReporting(b, cfg)
		})
	}
}

// BenchmarkAblationWFBP measures wait-free backpropagation's overlap on a
// sharded ASP run.
func BenchmarkAblationWFBP(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := costCfg(core.ASP, 16)
			cfg.Sharding = core.ShardLayerWise
			cfg.WaitFreeBP = on
			runReporting(b, cfg)
		})
	}
}

// BenchmarkAblationDGC measures the wire effect of DGC's sparsity ratio.
func BenchmarkAblationDGC(b *testing.B) {
	for _, ratio := range []float64{1, 0.01, 0.001} {
		b.Run(fmt.Sprintf("ratio=%g", ratio), func(b *testing.B) {
			cfg := costCfg(core.ASP, 16)
			cfg.Sharding = core.ShardLayerWise
			if ratio < 1 {
				d := grad.DGCConfig{Ratio: ratio, Momentum: 0.9, ClipNorm: 2}
				cfg.DGC = &d
			}
			runReporting(b, cfg)
		})
	}
}

// BenchmarkAblationBipartite contrasts AD-PSGD's bipartite partner graph
// with GoSGD-style unconstrained selection (which the bipartite design
// exists to make deadlock-free) by measuring the bipartite variant across
// scales.
func BenchmarkAblationBipartite(b *testing.B) {
	for _, w := range []int{8, 24} {
		b.Run(map[int]string{8: "8workers", 24: "24workers"}[w], func(b *testing.B) {
			runReporting(b, costCfg(core.ADPSGD, w))
		})
	}
}

// BenchmarkAblationPSRatio reproduces the paper's PS:worker ratio profiling
// (Section VI-D): 1, 2 or 4 PS shards per 4-GPU machine, balanced
// partitioning, ASP on VGG-16 over 10 Gbps.
func BenchmarkAblationPSRatio(b *testing.B) {
	for _, perMachine := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%d:4", perMachine), func(b *testing.B) {
			cfg := costCfg(core.ASP, 16)
			// On the fast network the PS aggregation rate, not the NIC, is
			// the contended resource — the regime where the ratio matters.
			cfg.Cluster = cluster.Paper56G(16)
			cfg.Sharding = core.ShardBalanced
			cfg.Shards = perMachine * cfg.Cluster.Machines
			runReporting(b, cfg)
		})
	}
}

// BenchmarkAblationStragglers measures how straggler injection degrades a
// synchronous vs an asynchronous algorithm (the paper's straggler
// discussion, Section VI-C).
func BenchmarkAblationStragglers(b *testing.B) {
	for _, algo := range []core.Algo{core.BSP, core.ADPSGD} {
		for _, straggle := range []bool{false, true} {
			name := string(algo) + "/clean"
			if straggle {
				name = string(algo) + "/stragglers"
			}
			b.Run(name, func(b *testing.B) {
				cfg := costCfg(algo, 16)
				// Compute-bound regime (fast network, ResNet-50) so the
				// cost of *waiting* for stragglers is what differs.
				cfg.Cluster = cluster.Paper56G(16)
				cfg.Workload = costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128)
				if straggle {
					cfg.Workload.GPU.StragglerProb = 0.1
					cfg.Workload.GPU.StragglerMult = 6
				}
				runReporting(b, cfg)
			})
		}
	}
}

// BenchmarkAblationQuantize8 measures the 8-bit gradient quantization
// extension against dense transfers.
func BenchmarkAblationQuantize8(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "dense"
		if on {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			cfg := costCfg(core.ASP, 16)
			cfg.Sharding = core.ShardLayerWise
			cfg.Quantize8 = on
			runReporting(b, cfg)
		})
	}
}

// BenchmarkCoreRun measures end-to-end real-math training throughput —
// dataset sampling, MiniCNN forward/backward, simulated network, parameter
// updates — across compute-pool sizes. pool=0 is the serial inline
// baseline; larger pools overlap virtually-concurrent replicas' passes on
// real cores (the tentpole perf path). Results are byte-identical across
// pool sizes (see core.TestPoolSizeBitIdentical); only wall time may move.
func BenchmarkCoreRun(b *testing.B) {
	r := rng.New(42)
	ds := data.GenShapes16(r, 800)
	trainDS, testDS := ds.Split(r.Split(1), 160)
	mk := func(algo core.Algo, pool int) core.Config {
		cfg := costCfg(algo, 8)
		cfg.Cluster = cluster.Paper56G(8)
		cfg.Iters = 10
		cfg.PoolSize = pool
		cfg.LR = opt.Schedule{Base: 0.05}
		cfg.Real = &core.RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
			Train:   trainDS,
			Test:    testDS,
			Batch:   16,
			EvalMax: 64,
		}
		return cfg
	}
	for _, algo := range []core.Algo{core.BSP, core.ASP} {
		for _, pool := range []int{0, 1, 4, 8} {
			b.Run(fmt.Sprintf("%s/pool=%d", algo, pool), func(b *testing.B) {
				cfg := mk(algo, pool)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Run(context.Background(), cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineRealStep measures the end-to-end cost of one real-math
// BSP iteration on the mini CNN (the unit of the accuracy experiments).
func BenchmarkEngineRealStep(b *testing.B) {
	// One full quick-mode accuracy preset per iteration keeps this honest:
	// dataset generation, model init, simulated cluster, real gradients.
	benchExperiment(b, "table2")
}

// BenchmarkGemmTrainStep measures one raw train step (sample, forward,
// backward, SGD update) on both accuracy-experiment substrates. With the
// scratch arena and preallocated staging vectors the steady state should
// report ~0 allocs/op — the tentpole's allocation goal.
func BenchmarkGemmTrainStep(b *testing.B) {
	for _, quick := range []bool{true, false} {
		name := "minicnn-shapes16"
		if quick {
			name = "mlp-gauss"
		}
		b.Run(name, func(b *testing.B) {
			h := train.NewStepHarness(train.Options{Quick: quick, Seed: 1})
			h.Step() // warm the arena and lazy layer caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Step()
			}
		})
	}
}
